/**
 * @file
 * Microbenchmarks of the simulator substrates: cache lookup/insert,
 * mesh routing, network traversal, directory math, SHA-256, AES-256,
 * and Zipf sampling. These guard the simulator's own performance
 * (host-side), since every experiment replays tens of millions of
 * accesses through these paths.
 *
 * Self-timed harness (no external benchmark library): each benchmark
 * runs in doubling batches until it accumulates enough wall time for a
 * stable ns/op reading, and an empty-asm sink keeps the optimizer from
 * deleting the measured work. `--json <path>` writes a
 * "BENCH_micro/v1" report — unlike the figure benches this report
 * *is* host timing (that is the quantity under test), so its numbers
 * are machine-specific and never byte-compared.
 *
 * Knobs: IRONHIDE_MICRO_MS (min measured milliseconds per benchmark,
 * default 20).
 */

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "crypto/aes256.hh"
#include "crypto/sha256.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"
#include "mem/cache.hh"
#include "mem/directory.hh"
#include "noc/network.hh"
#include "sim/config.hh"
#include "sim/rng.hh"

using namespace ih;

namespace
{

/** Keep @p value (and everything feeding it) alive past the optimizer. */
template <typename T>
inline void
sink(const T &value)
{
    asm volatile("" : : "g"(&value) : "memory");
}

struct MicroResult
{
    std::string name;
    double nsPerOp = 0.0;
    std::uint64_t iterations = 0;
    double bytesPerOp = 0.0; ///< 0 = no throughput view
};

/**
 * Time @p body(iters) in doubling batches until one batch spans at
 * least the configured minimum wall time, then report that batch.
 * The setup (captured by the closure) runs once, outside the timing.
 */
MicroResult
runMicro(const std::string &name,
         const std::function<void(std::uint64_t iters)> &body,
         double bytes_per_op = 0.0)
{
    const double min_ms = envPositiveDouble("IRONHIDE_MICRO_MS", 20.0);
    using Clock = std::chrono::steady_clock;
    std::uint64_t iters = 64;
    for (;;) {
        const auto t0 = Clock::now();
        body(iters);
        const auto t1 = Clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (ms >= min_ms || iters >= (1ULL << 40)) {
            MicroResult r;
            r.name = name;
            r.nsPerOp = ms * 1e6 / static_cast<double>(iters);
            r.iterations = iters;
            r.bytesPerOp = bytes_per_op;
            return r;
        }
        // Jump straight near the target once a measurable reading
        // exists; otherwise keep doubling.
        if (ms > 0.1) {
            const double factor = min_ms / ms * 1.2;
            iters = static_cast<std::uint64_t>(
                static_cast<double>(iters) * (factor > 2.0 ? factor : 2.0));
        } else {
            iters *= 2;
        }
    }
}

std::vector<MicroResult>
runAll()
{
    std::vector<MicroResult> out;

    {
        Cache cache("bm", 16 * 1024, 4, 64);
        for (Addr a = 0; a < 16 * 1024; a += 64)
            cache.insert(a, 0, Domain::INSECURE);
        out.push_back(runMicro("cache_lookup_hit", [&](std::uint64_t n) {
            Addr a = 0;
            for (std::uint64_t i = 0; i < n; ++i) {
                sink(cache.lookup(a));
                a = (a + 64) & (16 * 1024 - 1);
            }
        }));
    }

    {
        Cache cache("bm", 16 * 1024, 4, 64);
        out.push_back(runMicro("cache_insert_evict", [&](std::uint64_t n) {
            Addr a = 0;
            for (std::uint64_t i = 0; i < n; ++i) {
                if (!cache.findLine(a))
                    sink(cache.insert(a, 0, Domain::INSECURE));
                a += 64 * 257; // stride through sets
            }
        }));
    }

    {
        SysConfig cfg;
        cfg.validate();
        Topology topo(cfg);
        Router router(topo);
        const ClusterRange cl{0, 32};
        out.push_back(runMicro("route_path", [&](std::uint64_t n) {
            CoreId s = 0;
            for (std::uint64_t i = 0; i < n; ++i) {
                sink(router.path(s % 32, (s * 7 + 3) % 32,
                                 router.selectOrder(s % 32, cl)));
                ++s;
            }
        }));
    }

    {
        SysConfig cfg;
        cfg.validate();
        Topology topo(cfg);
        Network net(cfg, topo);
        const ClusterRange whole{0, topo.numTiles()};
        out.push_back(runMicro("network_traverse", [&](std::uint64_t n) {
            Cycle t = 0;
            CoreId s = 0;
            for (std::uint64_t i = 0; i < n; ++i) {
                t = net.traverse(s % 64, (s * 13 + 5) % 64, t, 5, whole);
                ++s;
                sink(t);
            }
        }));
    }

    out.push_back(runMicro("directory_sharers", [](std::uint64_t n) {
        std::uint64_t mask = 0xDEADBEEFCAFEF00DULL;
        std::uint64_t acc = 0;
        for (std::uint64_t i = 0; i < n; ++i) {
            Directory::forEachSharer(mask, [&](CoreId c) { acc += c; });
            mask = (mask << 1) | (mask >> 63);
            sink(acc);
        }
    }));

    out.push_back(runMicro(
        "sha256_1KiB",
        [](std::uint64_t n) {
            std::uint8_t buf[1024] = {42};
            for (std::uint64_t i = 0; i < n; ++i)
                sink(Sha256::hash(buf, sizeof(buf)));
        },
        1024.0));

    {
        Aes256::Key key{};
        for (unsigned i = 0; i < key.size(); ++i)
            key[i] = static_cast<std::uint8_t>(i);
        const Aes256 aes(key);
        out.push_back(runMicro(
            "aes256_block",
            [&](std::uint64_t n) {
                Aes256::Block block{};
                for (std::uint64_t i = 0; i < n; ++i) {
                    block = aes.encryptBlock(block);
                    sink(block);
                }
            },
            16.0));
    }

    {
        Rng rng(7);
        ZipfSampler zipf(65536, 0.9);
        out.push_back(runMicro("zipf_sample", [&](std::uint64_t n) {
            for (std::uint64_t i = 0; i < n; ++i)
                sink(zipf.sample(rng));
        }));
    }

    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *json_path = jsonReportPath(argc, argv);
    printBanner("Simulator-component microbenchmarks",
                "Host-side ns/op of the substrates every experiment "
                "replays millions of\ntimes: caches, routing, NoC, "
                "directory, crypto, sampling.");

    const std::vector<MicroResult> results = runAll();

    Table table({"benchmark", "ns/op", "ops/s", "MB/s"});
    for (const MicroResult &r : results) {
        const double ops = 1e9 / r.nsPerOp;
        table.addRow({r.name, Table::num(r.nsPerOp, 1),
                      Table::num(ops, 0),
                      r.bytesPerOp > 0.0
                          ? Table::num(ops * r.bytesPerOp / 1e6, 1)
                          : std::string("-")});
    }
    table.print();

    if (json_path) {
        JsonWriter w;
        w.beginObject();
        w.key("schema").value("BENCH_micro/v1");
        w.key("bench").value("micro_components");
        w.key("results").beginArray();
        for (const MicroResult &r : results) {
            w.beginObject();
            w.key("name").value(r.name);
            w.key("ns_per_op").value(r.nsPerOp);
            w.key("iterations").value(r.iterations);
            if (r.bytesPerOp > 0.0)
                w.key("bytes_per_op").value(r.bytesPerOp);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        writeTextFile(json_path, w.str() + "\n");
        inform("wrote micro report: %s", json_path);
    }
    return 0;
}
