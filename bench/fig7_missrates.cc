/**
 * @file
 * Regenerates Figure 7: private L1 (a) and shared L2 (b) cache miss
 * rates of every interactive application under MI6 and IRONHIDE.
 *
 * Paper shapes: IRONHIDE improves L1 miss rates by up to ~5.9x (MI6
 * thrashes the L1s by purging them at every interaction); L2 miss rates
 * improve up to ~2x through load-balanced slice allocation, with
 * <TC, GRAPH> and <LIGHTTPD, OS> as exceptions where the asymmetric
 * allocation makes IRONHIDE's L2 slightly worse.
 */

#include <vector>

#include "harness/experiment.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"

using namespace ih;

int
main(int argc, char **argv)
{
    const std::vector<AppSpec> apps = standardApps(benchScale());

    const std::vector<SweepJob> jobs =
        SweepGrid()
            .config(benchConfig())
            .apps(apps)
            .archs({ArchKind::MI6, ArchKind::IRONHIDE})
            .jobs();

    const int merged =
        maybeMergeShardReports(argc, argv, "fig7_missrates", jobs);
    if (merged >= 0)
        return merged;

    printBanner("Figure 7",
                "Private L1 (a) and shared L2 (b) miss rates, MI6 vs "
                "IRONHIDE.\nPaper: L1 improves up to ~5.9x under "
                "IRONHIDE; L2 up to ~2x, with\n<TC, GRAPH> and "
                "<LIGHTTPD, OS> as exceptions.");

    const SweepOutcome out =
        runBenchSweep(argc, argv, "fig7_missrates", jobs);
    if (!out.complete() || out.sharded()) {
        // The paired MI6/IRONHIDE rows below need every cell; a
        // partial run already reported its cells above.
        maybeWriteJsonReport(argc, argv, "fig7_missrates", jobs, out);
        return out.exitCode();
    }
    const std::vector<ExperimentResult> &results = out.results;

    Table table({"application", "L1 MI6", "L1 IRONHIDE", "L1 gain",
                 "L2 MI6", "L2 IRONHIDE", "L2 gain"});
    std::vector<double> l1_mi6, l1_ih, l2_mi6, l2_ih;

    for (std::size_t i = 0; i < apps.size(); ++i) {
        const AppSpec &app = apps[i];
        const ExperimentResult &mi6 = results[2 * i];
        const ExperimentResult &ih = results[2 * i + 1];
        table.addRow({app.name, Table::pct(mi6.run.l1MissRate),
                      Table::pct(ih.run.l1MissRate),
                      Table::num(safeDiv(mi6.run.l1MissRate,
                                         ih.run.l1MissRate)) + "x",
                      Table::pct(mi6.run.l2MissRate),
                      Table::pct(ih.run.l2MissRate),
                      Table::num(safeDiv(mi6.run.l2MissRate,
                                         ih.run.l2MissRate)) + "x"});
        l1_mi6.push_back(std::max(1e-6, mi6.run.l1MissRate));
        l1_ih.push_back(std::max(1e-6, ih.run.l1MissRate));
        l2_mi6.push_back(std::max(1e-6, mi6.run.l2MissRate));
        l2_ih.push_back(std::max(1e-6, ih.run.l2MissRate));
    }
    table.addSeparator();
    table.addRow({"geomean", Table::pct(geomean(l1_mi6)),
                  Table::pct(geomean(l1_ih)),
                  Table::num(geomean(l1_mi6) / geomean(l1_ih)) + "x",
                  Table::pct(geomean(l2_mi6)), Table::pct(geomean(l2_ih)),
                  Table::num(geomean(l2_mi6) / geomean(l2_ih)) + "x"});
    table.print();

    maybeWriteJsonReport(argc, argv, "fig7_missrates", jobs, out);
    return out.exitCode();
}
