/**
 * @file
 * Regenerates Figure 6: per-application completion times of the
 * SGX-like, MI6 and IRONHIDE architectures, split into process
 * execution (compute) and enclave entry/exit overheads (SGX constant
 * costs / MI6 purging / IRONHIDE one-time reconfiguration), plus the
 * number of cores the re-allocation predictor gives the secure cluster
 * (the markers of the paper's figure), and user-level / OS-level / all
 * geomean summaries.
 *
 * Paper shapes: MI6 purging is ~47% of its completion; IRONHIDE is
 * ~2.1x faster than MI6 overall (~32% user-level, ~3.1x OS-level) and
 * ~20% faster than SGX; the purge component shrinks by orders of
 * magnitude (paper: ~706x).
 */

#include <vector>

#include "harness/experiment.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"

using namespace ih;

int
main(int argc, char **argv)
{
    const std::vector<AppSpec> apps = standardApps(benchScale());

    // One job per (app, arch) cell, enumerated app-major so the rows
    // below read exactly like the paper's figure; the runner executes
    // them in parallel and hands the results back in job order.
    const std::vector<SweepJob> jobs =
        SweepGrid()
            .config(benchConfig())
            .apps(apps)
            .archs({ArchKind::SGX_LIKE, ArchKind::MI6, ArchKind::IRONHIDE})
            .jobs();

    const int merged =
        maybeMergeShardReports(argc, argv, "fig6_completion", jobs);
    if (merged >= 0)
        return merged;

    printBanner("Figure 6",
                "Completion time (ms, simulated) per interactive "
                "application,\nbroken into compute and "
                "transition/purge/reconfig overheads.\nMarkers: secure-"
                "cluster core count chosen by the predictor.");

    const SweepOutcome out =
        runBenchSweep(argc, argv, "fig6_completion", jobs);
    if (!out.complete() || out.sharded()) {
        // The per-app/arch tables below assume every cell of the grid;
        // a partial run already reported its cells above.
        maybeWriteJsonReport(argc, argv, "fig6_completion", jobs, out);
        return out.exitCode();
    }
    const std::vector<ExperimentResult> &results = out.results;

    Table table({"application", "arch", "total(ms)", "compute(ms)",
                 "overhead(ms)", "ovh%", "secure cores"});

    struct Agg
    {
        std::vector<double> sgx, mi6, ih, mi6_over_ih, purge_ratio;
    } user, os, all;

    std::size_t next_result = 0;
    for (const AppSpec &app : apps) {
        double t_sgx = 0, t_mi6 = 0, t_ih = 0;
        double mi6_purge = 0, ih_reconf = 0;
        for (ArchKind kind :
             {ArchKind::SGX_LIKE, ArchKind::MI6, ArchKind::IRONHIDE}) {
            const ExperimentResult &r = results[next_result++];
            const double total = r.run.completionMs();
            double overhead = cyclesToMs(r.run.transitionCycles);
            if (kind == ArchKind::IRONHIDE)
                overhead = cyclesToMs(r.run.reconfigCycles);
            table.addRow(
                {app.name, r.arch, Table::num(total, 3),
                 Table::num(total - overhead, 3), Table::num(overhead, 3),
                 Table::pct(overhead / total),
                 kind == ArchKind::IRONHIDE
                     ? strprintf("%u", r.decidedSplit)
                     : "-"});
            if (kind == ArchKind::SGX_LIKE)
                t_sgx = total;
            if (kind == ArchKind::MI6) {
                t_mi6 = total;
                mi6_purge = cyclesToMs(r.run.purgeCycles);
            }
            if (kind == ArchKind::IRONHIDE) {
                t_ih = total;
                ih_reconf = cyclesToMs(r.run.reconfigCycles);
            }
        }
        table.addSeparator();

        Agg &grp = app.osLevel ? os : user;
        for (Agg *a : {&grp, &all}) {
            a->sgx.push_back(t_sgx);
            a->mi6.push_back(t_mi6);
            a->ih.push_back(t_ih);
            a->mi6_over_ih.push_back(t_mi6 / t_ih);
            if (ih_reconf > 0)
                a->purge_ratio.push_back(mi6_purge / ih_reconf);
        }
    }
    table.print();

    Table summary({"group", "IRONHIDE vs MI6", "IRONHIDE vs SGX",
                   "paper (vs MI6)"});
    auto ratio = [](const std::vector<double> &a,
                    const std::vector<double> &b) {
        return geomean(a) / geomean(b);
    };
    summary.addRow({"user-level", Table::num(ratio(user.mi6, user.ih)),
                    Table::num(ratio(user.sgx, user.ih)), "~1.32x"});
    summary.addRow({"OS-level", Table::num(ratio(os.mi6, os.ih)),
                    Table::num(ratio(os.sgx, os.ih)), "~3.1x"});
    summary.addRow({"all", Table::num(ratio(all.mi6, all.ih)),
                    Table::num(ratio(all.sgx, all.ih)),
                    "~2.1x (and ~1.2x vs SGX)"});
    summary.print();

    std::printf("\nMI6 purge vs IRONHIDE one-time reconfig overhead "
                "(geomean ratio): %.0fx  (paper: ~706x)\n",
                geomean(all.purge_ratio));

    maybeWriteJsonReport(argc, argv, "fig6_completion", jobs, out);
    return out.exitCode();
}
