/**
 * @file
 * Regenerates the methodology/analysis numbers the paper reports in
 * prose (Sections IV-B and V-B): the measured interactivity rate of
 * each application class (secure entry/exit events per second), the MI6
 * purge cost per interaction event, the IRONHIDE one-time
 * reconfiguration overhead, and the SGX entry/exit constant.
 *
 * Paper values: ~400 events/s user-level, ~220K events/s OS-level
 * (measured on the unpartitioned baseline); ~0.19 ms MI6 purge per
 * event; ~15 ms one-time IRONHIDE overhead; 5 us per SGX ECALL/OCALL.
 * Our machine and inputs are scaled ~10x down, so absolute rates are
 * proportionally higher and purge costs proportionally lower; the
 * user-vs-OS contrast (orders of magnitude) is the reproduced shape.
 */

#include <vector>

#include "harness/experiment.hh"
#include "harness/report.hh"

using namespace ih;

int
main()
{
    printBanner("Interactivity & purge-cost table (prose, §IV-B/§V-B)",
                "Measured interactivity rates and per-event transition "
                "costs.");

    const SysConfig cfg = benchConfig();
    const std::vector<AppSpec> apps = standardApps(benchScale());

    Table table({"application", "class", "baseline events/s",
                 "MI6 purge/event(us)", "IRONHIDE one-time(ms)"});

    std::vector<double> user_rate, os_rate, purge_per_event;
    for (const AppSpec &app : apps) {
        const ExperimentResult base =
            runExperiment(app, ArchKind::INSECURE, cfg);
        const ExperimentResult mi6 = runExperiment(app, ArchKind::MI6,
                                                   cfg);
        const ExperimentResult ih =
            runExperiment(app, ArchKind::IRONHIDE, cfg);

        const double per_event =
            mi6.run.transitions
                ? cyclesToUs(mi6.run.purgeCycles) /
                      static_cast<double>(mi6.run.transitions)
                : 0.0;
        purge_per_event.push_back(per_event);
        (app.osLevel ? os_rate : user_rate)
            .push_back(base.run.interactivityPerSec);

        table.addRow({app.name, app.osLevel ? "OS" : "user",
                      Table::num(base.run.interactivityPerSec, 0),
                      Table::num(per_event, 2),
                      Table::num(cyclesToMs(ih.run.reconfigCycles), 3)});
    }
    table.addSeparator();
    table.print();

    std::printf(
        "\ngeomean interactivity: user-level %.0f events/s, OS-level "
        "%.0f events/s\n  (paper: ~400/s vs ~220K/s on the full-size "
        "machine; the ~100-1000x class gap is the shape)\n",
        geomean(user_rate), geomean(os_rate));
    std::printf("geomean MI6 purge per event: %.2f us  (paper: ~190 us "
                "on the full-size Tile-Gx72)\n",
                geomean(purge_per_event));
    std::printf("SGX entry/exit constant: %.1f us per event (paper: "
                "2.5-5 us, modelled at 5 us)\n",
                cyclesToUs(cfg.sgxEnterExitCycles));
    return 0;
}
