/**
 * @file
 * Regenerates the methodology/analysis numbers the paper reports in
 * prose (Sections IV-B and V-B): the measured interactivity rate of
 * each application class (secure entry/exit events per second), the MI6
 * purge cost per interaction event, the IRONHIDE one-time
 * reconfiguration overhead, and the SGX entry/exit constant.
 *
 * Paper values: ~400 events/s user-level, ~220K events/s OS-level
 * (measured on the unpartitioned baseline); ~0.19 ms MI6 purge per
 * event; ~15 ms one-time IRONHIDE overhead; 5 us per SGX ECALL/OCALL.
 * Our machine and inputs are scaled ~10x down, so absolute rates are
 * proportionally higher and purge costs proportionally lower; the
 * user-vs-OS contrast (orders of magnitude) is the reproduced shape.
 *
 * The (app x {baseline, MI6, IRONHIDE}) grid fans out over the
 * SweepRunner pool (IRONHIDE_THREADS) like every figure bench, and
 * `--json <path>` writes the standard sweep report.
 */

#include <cstdio>
#include <vector>

#include "harness/experiment.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"

using namespace ih;

int
main(int argc, char **argv)
{
    const SysConfig cfg = benchConfig();
    const std::vector<AppSpec> apps = standardApps(benchScale());

    // App-major, then arch — each app's three runs sit at
    // results[app*3 + {0,1,2}] = {baseline, MI6, IRONHIDE}.
    const std::vector<SweepJob> jobs =
        SweepGrid()
            .config(cfg)
            .apps(apps)
            .archs({ArchKind::INSECURE, ArchKind::MI6, ArchKind::IRONHIDE})
            .jobs();

    const int merged =
        maybeMergeShardReports(argc, argv, "tab_interactivity", jobs);
    if (merged >= 0)
        return merged;

    printBanner("Interactivity & purge-cost table (prose, §IV-B/§V-B)",
                "Measured interactivity rates and per-event transition "
                "costs.");

    const SweepOutcome out =
        runBenchSweep(argc, argv, "tab_interactivity", jobs);
    if (!out.complete() || out.sharded()) {
        // The per-app baseline/MI6/IRONHIDE triples below need every
        // cell; a partial run already reported its cells above.
        maybeWriteJsonReport(argc, argv, "tab_interactivity", jobs, out);
        return out.exitCode();
    }
    const std::vector<ExperimentResult> &results = out.results;

    Table table({"application", "class", "baseline events/s",
                 "MI6 purge/event(us)", "IRONHIDE one-time(ms)"});

    std::vector<double> user_rate, os_rate, purge_per_event;
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const AppSpec &app = apps[i];
        const ExperimentResult &base = results[i * 3 + 0];
        const ExperimentResult &mi6 = results[i * 3 + 1];
        const ExperimentResult &ih = results[i * 3 + 2];

        const double per_event =
            mi6.run.transitions
                ? cyclesToUs(mi6.run.purgeCycles) /
                      static_cast<double>(mi6.run.transitions)
                : 0.0;
        purge_per_event.push_back(per_event);
        (app.osLevel ? os_rate : user_rate)
            .push_back(base.run.interactivityPerSec);

        table.addRow({app.name, app.osLevel ? "OS" : "user",
                      Table::num(base.run.interactivityPerSec, 0),
                      Table::num(per_event, 2),
                      Table::num(cyclesToMs(ih.run.reconfigCycles), 3)});
    }
    table.addSeparator();
    table.print();

    std::printf(
        "\ngeomean interactivity: user-level %.0f events/s, OS-level "
        "%.0f events/s\n  (paper: ~400/s vs ~220K/s on the full-size "
        "machine; the ~100-1000x class gap is the shape)\n",
        geomean(user_rate), geomean(os_rate));
    std::printf("geomean MI6 purge per event: %.2f us  (paper: ~190 us "
                "on the full-size Tile-Gx72)\n",
                geomean(purge_per_event));
    std::printf("SGX entry/exit constant: %.1f us per event (paper: "
                "2.5-5 us, modelled at 5 us)\n",
                cyclesToUs(cfg.sgxEnterExitCycles));

    maybeWriteJsonReport(argc, argv, "tab_interactivity", jobs, out);
    return out.exitCode();
}
