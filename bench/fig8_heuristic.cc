/**
 * @file
 * Regenerates Figure 8: sensitivity of IRONHIDE to the cluster
 * reconfiguration decision. Geomean completion time (normalized to MI6
 * = 100) for the gradient Heuristic, the exhaustive Optimal oracle, and
 * fixed +/-x% decision variations that give the secure cluster x% of
 * the machine's cores more (+) or fewer (-) than Optimal.
 *
 * Paper shapes: Optimal ~2.3x and Heuristic ~2.1x better than MI6, with
 * the Heuristic staying within the +/-5% variation band.
 */

#include <vector>

#include "harness/experiment.hh"
#include "harness/report.hh"

using namespace ih;

int
main()
{
    printBanner("Figure 8",
                "Cluster-reconfiguration decision study: completion time "
                "normalized\nto MI6 = 100 (lower is better). Paper: "
                "Optimal ~2.3x, Heuristic ~2.1x\nbetter than MI6; "
                "Heuristic within the +/-5% variations.");

    const SysConfig cfg = benchConfig();
    // Fig 8 sweeps many configurations; shrink inputs to keep it quick.
    const std::vector<AppSpec> apps = standardApps(benchScale() * 0.5);

    struct Config
    {
        const char *label;
        SplitPolicy policy;
        int variation;
    };
    const std::vector<Config> configs = {
        {"Heuristic", SplitPolicy::HEURISTIC, 0},
        {"Optimal", SplitPolicy::OPTIMAL, 0},
        {"+5%", SplitPolicy::OPTIMAL, +5},
        {"-5%", SplitPolicy::OPTIMAL, -5},
        {"+10%", SplitPolicy::OPTIMAL, +10},
        {"-10%", SplitPolicy::OPTIMAL, -10},
        {"+25%", SplitPolicy::OPTIMAL, +25},
        {"-25%", SplitPolicy::OPTIMAL, -25},
    };

    // MI6 reference per app.
    std::vector<double> mi6;
    for (const AppSpec &app : apps)
        mi6.push_back(
            runExperiment(app, ArchKind::MI6, cfg).run.completionMs());

    Table table({"configuration", "normalized completion (MI6=100)",
                 "speedup vs MI6"});
    table.addRow({"MI6", "100.0", "1.00x"});

    for (const Config &c : configs) {
        std::vector<double> norm;
        for (std::size_t i = 0; i < apps.size(); ++i) {
            IronhideOptions opts;
            opts.policy = c.policy;
            opts.variationPct = c.variation;
            const ExperimentResult r =
                runExperiment(apps[i], ArchKind::IRONHIDE, cfg, opts);
            norm.push_back(r.run.completionMs() / mi6[i] * 100.0);
        }
        const double g = geomean(norm);
        table.addRow({c.label, Table::num(g, 1),
                      Table::num(100.0 / g) + "x"});
    }
    table.print();
    return 0;
}
