/**
 * @file
 * Regenerates Figure 8: sensitivity of IRONHIDE to the cluster
 * reconfiguration decision. Geomean completion time (normalized to MI6
 * = 100) for the gradient Heuristic, the exhaustive Optimal oracle, and
 * fixed +/-x% decision variations that give the secure cluster x% of
 * the machine's cores more (+) or fewer (-) than Optimal.
 *
 * Paper shapes: Optimal ~2.3x and Heuristic ~2.1x better than MI6, with
 * the Heuristic staying within the +/-5% variation band.
 *
 * The irregular (app x {MI6, 8 IRONHIDE configs}) grid is built as an
 * explicit job vector and fans out over the SweepRunner pool
 * (IRONHIDE_THREADS) like every figure bench, with the standard
 * fault-tolerance flags (IRONHIDE_SHARD, --isolate, --journal,
 * --merge) and `--json <path>` writing the "sweep/v2" report.
 */

#include <vector>

#include "harness/experiment.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"

using namespace ih;

int
main(int argc, char **argv)
{
    const SysConfig cfg = benchConfig();
    // Fig 8 sweeps many configurations; shrink inputs to keep it quick.
    const std::vector<AppSpec> apps = standardApps(benchScale() * 0.5);

    struct Config
    {
        const char *label;
        SplitPolicy policy;
        int variation;
    };
    const std::vector<Config> configs = {
        {"Heuristic", SplitPolicy::HEURISTIC, 0},
        {"Optimal", SplitPolicy::OPTIMAL, 0},
        {"+5%", SplitPolicy::OPTIMAL, +5},
        {"-5%", SplitPolicy::OPTIMAL, -5},
        {"+10%", SplitPolicy::OPTIMAL, +10},
        {"-10%", SplitPolicy::OPTIMAL, -10},
        {"+25%", SplitPolicy::OPTIMAL, +25},
        {"-25%", SplitPolicy::OPTIMAL, -25},
    };

    // App-major: each app owns 9 consecutive jobs — its MI6 reference
    // followed by the 8 IRONHIDE decision configs in table order.
    const std::size_t stride = 1 + configs.size();
    std::vector<SweepJob> jobs;
    jobs.reserve(apps.size() * stride);
    for (const AppSpec &app : apps) {
        SweepJob mi6;
        mi6.app = app;
        mi6.arch = ArchKind::MI6;
        mi6.cfg = cfg;
        jobs.push_back(std::move(mi6));
        for (const Config &c : configs) {
            SweepJob job;
            job.app = app;
            job.arch = ArchKind::IRONHIDE;
            job.cfg = cfg;
            job.ihopts.policy = c.policy;
            job.ihopts.variationPct = c.variation;
            job.tag = c.label;
            jobs.push_back(std::move(job));
        }
    }

    const int merged =
        maybeMergeShardReports(argc, argv, "fig8_heuristic", jobs);
    if (merged >= 0)
        return merged;

    printBanner("Figure 8",
                "Cluster-reconfiguration decision study: completion time "
                "normalized\nto MI6 = 100 (lower is better). Paper: "
                "Optimal ~2.3x, Heuristic ~2.1x\nbetter than MI6; "
                "Heuristic within the +/-5% variations.");

    const SweepOutcome out =
        runBenchSweep(argc, argv, "fig8_heuristic", jobs);
    if (!out.complete() || out.sharded()) {
        // The per-app MI6 normalization below needs every cell; a
        // partial run already reported its cells above.
        maybeWriteJsonReport(argc, argv, "fig8_heuristic", jobs, out);
        return out.exitCode();
    }
    const std::vector<ExperimentResult> &results = out.results;

    Table table({"configuration", "normalized completion (MI6=100)",
                 "speedup vs MI6"});
    table.addRow({"MI6", "100.0", "1.00x"});

    for (std::size_t c = 0; c < configs.size(); ++c) {
        std::vector<double> norm;
        for (std::size_t i = 0; i < apps.size(); ++i) {
            const double mi6 =
                results[i * stride].run.completionMs();
            norm.push_back(
                results[i * stride + 1 + c].run.completionMs() / mi6 *
                100.0);
        }
        const double g = geomean(norm);
        table.addRow({configs[c].label, Table::num(g, 1),
                      Table::num(100.0 / g) + "x"});
    }
    table.print();

    maybeWriteJsonReport(argc, argv, "fig8_heuristic", jobs, out);
    return out.exitCode();
}
