/**
 * @file
 * Ablation: TLB geometry sensitivity (associativity x size).
 *
 * The simulator models a set-associative TLB (SysConfig::tlbWays,
 * 0 = fully associative — the paper's configuration), but until this
 * ablation no paper-style experiment exercised the set-associative
 * geometries outside unit tests. The sweep runs a TLB-pressure-diverse
 * app subset under MI6 and IRONHIDE across the cross product of TLB
 * sizes (16/32/64 entries, the tlbEntries dimension of SweepGrid) and
 * associativities (fully-associative, 8-way, 4-way; the tlbWays
 * dimension), reporting completion time and miss rates per geometry.
 * Expected shape: the paper's conclusions are insensitive to realistic
 * TLB hardware — conflict misses in a 4/8-way TLB barely move
 * completion at any size, while capacity (entry count) is the axis
 * that actually shifts miss rates — which this bench makes checkable
 * instead of assumed.
 *
 * `--json <path>` writes the standard sweep report.
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"

using namespace ih;

int
main(int argc, char **argv)
{
    const SysConfig cfg = benchConfig();
    const double scale = benchScale() * 0.5;
    // One app per working-set flavour: graph (pointer-chasing, many
    // pages), convnet (streaming reuse), OS-level (kernel-style churn).
    const std::vector<AppSpec> apps = {findApp("<SSSP, GRAPH>", scale),
                                       findApp("<ALEXNET, VISION>", scale),
                                       findApp("<MEMCACHED, OS>", scale)};

    // Sizes outside, ways inside: every entry count expands into the
    // three associativities, so each group of 3 rows shares a size and
    // leads with its fully-associative reference.
    const std::vector<SweepJob> jobs =
        SweepGrid()
            .config(cfg)
            .apps(apps)
            .archs({ArchKind::MI6, ArchKind::IRONHIDE})
            .tlbEntries({16, 32, 64})
            .tlbWays({0, 8, 4})
            .jobs();

    const int merged = maybeMergeShardReports(argc, argv, "abl_tlb", jobs);
    if (merged >= 0)
        return merged;

    printBanner("Ablation — TLB geometry",
                "Completion and miss rates over TLB size (16/32/64 "
                "entries) x associativity\n(fully-associative vs 8-way vs "
                "4-way): does realistic TLB hardware change\nthe paper's "
                "story?");

    const SweepOutcome out = runBenchSweep(argc, argv, "abl_tlb", jobs);
    if (!out.complete() || out.sharded()) {
        // The geometry groups and headline deltas below need every
        // cell; a partial run already reported its cells above.
        maybeWriteJsonReport(argc, argv, "abl_tlb", jobs, out);
        return out.exitCode();
    }
    const std::vector<ExperimentResult> &results = out.results;

    constexpr std::size_t WAYS = 3;          // geometries per size
    constexpr std::size_t GROUP = 3 * WAYS;  // rows per (app, arch)

    Table table({"application", "arch", "tlb", "completion(ms)",
                 "l1 miss", "l2 miss"});
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const ExperimentResult &r = results[i];
        table.addRow({r.app, r.arch, jobs[i].tag,
                      Table::num(r.run.completionMs(), 3),
                      Table::pct(r.run.l1MissRate),
                      Table::pct(r.run.l2MissRate)});
        if (i % GROUP == GROUP - 1)
            table.addSeparator();
    }
    table.print();

    // Headline 1: the single worst completion delta of any
    // set-associative geometry against its same-size fully-associative
    // reference, across all (app, arch, size) triples — the
    // associativity axis should be noise.
    double worst_assoc = 0.0;
    for (std::size_t i = 0; i < jobs.size(); i += WAYS) {
        const double fa = results[i].run.completionMs();
        for (std::size_t k = 1; k < WAYS; ++k) {
            const double d =
                safeDiv(results[i + k].run.completionMs() - fa, fa);
            if (d > worst_assoc)
                worst_assoc = d;
        }
    }
    // Headline 2: the capacity axis — worst completion penalty of the
    // smallest (16-entry) against the largest (64-entry) TLB at
    // fully-associative geometry, per (app, arch) group. This is the
    // axis expected to actually move.
    double worst_size = 0.0;
    for (std::size_t i = 0; i + GROUP <= jobs.size(); i += GROUP) {
        const double small = results[i].run.completionMs();
        const double large = results[i + 2 * WAYS].run.completionMs();
        const double d = safeDiv(small - large, large);
        if (d > worst_size)
            worst_size = d;
    }
    std::printf("\nWorst set-associative completion penalty vs "
                "same-size fully-associative: %.2f%%\n"
                "Worst 16-entry completion penalty vs 64-entry "
                "(fully-associative): %.2f%%\n",
                worst_assoc * 100.0, worst_size * 100.0);

    maybeWriteJsonReport(argc, argv, "abl_tlb", jobs, out);
    return out.exitCode();
}
