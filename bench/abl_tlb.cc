/**
 * @file
 * Ablation: TLB associativity sensitivity.
 *
 * The simulator models a set-associative TLB (SysConfig::tlbWays,
 * 0 = fully associative — the paper's configuration), but until this
 * ablation no paper-style experiment exercised the set-associative
 * geometries outside unit tests. The sweep runs a TLB-pressure-diverse
 * app subset under MI6 and IRONHIDE at fully-associative, 8-way and
 * 4-way TLBs (the tlbWays dimension of SweepGrid), reporting
 * completion time and miss rates per geometry. Expected shape: the
 * paper's conclusions are insensitive to realistic TLB associativity —
 * conflict misses in a 4/8-way 32-entry TLB barely move completion —
 * which this bench makes checkable instead of assumed.
 *
 * `--json <path>` writes the standard sweep report.
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"

using namespace ih;

int
main(int argc, char **argv)
{
    jsonReportPath(argc, argv); // diagnose a bad --json before sweeping
    printBanner("Ablation — TLB associativity",
                "Completion and miss rates at fully-associative vs 8-way "
                "vs 4-way\nprivate TLBs: does realistic TLB hardware "
                "change the paper's story?");

    const SysConfig cfg = benchConfig();
    const double scale = benchScale() * 0.5;
    // One app per working-set flavour: graph (pointer-chasing, many
    // pages), convnet (streaming reuse), OS-level (kernel-style churn).
    const std::vector<AppSpec> apps = {findApp("<SSSP, GRAPH>", scale),
                                       findApp("<ALEXNET, VISION>", scale),
                                       findApp("<MEMCACHED, OS>", scale)};

    const std::vector<SweepJob> jobs =
        SweepGrid()
            .config(cfg)
            .apps(apps)
            .archs({ArchKind::MI6, ArchKind::IRONHIDE})
            .tlbWays({0, 8, 4})
            .jobs();

    const std::vector<ExperimentResult> results =
        SweepRunner(sweepThreads()).run(jobs);

    Table table({"application", "arch", "tlb", "completion(ms)",
                 "l1 miss", "l2 miss"});
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const ExperimentResult &r = results[i];
        table.addRow({r.app, r.arch, jobs[i].tag,
                      Table::num(r.run.completionMs(), 3),
                      Table::pct(r.run.l1MissRate),
                      Table::pct(r.run.l2MissRate)});
        if (i % 3 == 2)
            table.addSeparator();
    }
    table.print();

    // Headline: the single worst completion delta of any
    // set-associative geometry against its fully-associative
    // reference, across all (app, arch) groups — the per-cell view is
    // in the table above.
    double worst = 0.0;
    for (std::size_t i = 0; i < jobs.size(); i += 3) {
        const double fa = results[i].run.completionMs();
        for (std::size_t k = 1; k < 3; ++k) {
            const double d =
                safeDiv(results[i + k].run.completionMs() - fa, fa);
            if (d > worst)
                worst = d;
        }
    }
    std::printf("\nWorst set-associative completion penalty vs "
                "fully-associative: %.2f%%\n",
                worst * 100.0);

    maybeWriteJsonReport(argc, argv, "abl_tlb", jobs, results);
    return 0;
}
