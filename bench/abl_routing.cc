/**
 * @file
 * Ablation A1 (design choice, Section III-B2): why the mesh needs
 * *bidirectional* X-Y / Y-X routing for strong isolation.
 *
 * For every cluster split, checks all intra-cluster (src, dst) pairs of
 * both clusters: with X-Y-only routing, packets of a partially-owned
 * row drift through the other cluster's routers (isolation violations);
 * with the bidirectional policy the property tests rely on, containment
 * is total. Also reports the average route length, showing the security
 * fix costs no extra hops.
 *
 * The (split x policy) audit grid fans out over the SweepRunner pool
 * (IRONHIDE_THREADS), and `--json <path>` writes a "BENCH_routing/v1"
 * report. Each cell is a pure function of (split, policy, topology),
 * so the report bytes are identical at any worker count.
 */

#include <cstdio>
#include <vector>

#include "harness/experiment.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"
#include "noc/routing.hh"

using namespace ih;

namespace
{

struct RoutingJob
{
    unsigned split = 0;
    bool bidirectional = false;

    const char *policy() const { return bidirectional ? "bidir" : "xy"; }
};

struct Audit
{
    std::uint64_t pairs = 0;
    std::uint64_t violations = 0;
    double avgHops = 0.0;
};

Audit
auditPolicy(const Topology &topo, unsigned split, bool bidirectional)
{
    const Router router(topo);
    const unsigned tiles = topo.numTiles();
    const ClusterRange secure{0, split};
    const ClusterRange insecure{split, tiles - split};

    Audit a;
    double hops = 0.0;
    for (const ClusterRange &cl : {secure, insecure}) {
        for (CoreId s = cl.first; s < cl.first + cl.count; ++s) {
            for (CoreId d = cl.first; d < cl.first + cl.count; ++d) {
                const RouteOrder order = bidirectional
                                             ? router.selectOrder(s, cl)
                                             : RouteOrder::XY;
                const auto path = router.path(s, d, order);
                ++a.pairs;
                hops += static_cast<double>(path.size()) - 1.0;
                if (!router.pathContained(path, cl))
                    ++a.violations;
            }
        }
    }
    a.avgHops = hops / static_cast<double>(a.pairs);
    return a;
}

std::string
routingToJson(const std::vector<RoutingJob> &jobs,
              const std::vector<Audit> &results)
{
    JsonWriter w;
    w.beginObject();
    w.key("schema").value("BENCH_routing/v1");
    w.key("bench").value("abl_routing");
    w.key("results").beginArray();
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const Audit &a = results[i];
        w.beginObject();
        w.key("secure_cores").value(jobs[i].split);
        w.key("policy").value(jobs[i].policy());
        w.key("pairs").value(a.pairs);
        w.key("violations").value(a.violations);
        w.key("avg_hops").value(a.avgHops);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace

int
main(int argc, char **argv)
{
    const char *json_path = jsonReportPath(argc, argv);
    printBanner("Ablation A1 — deterministic routing policy",
                "Cluster containment of X-Y-only vs bidirectional "
                "X-Y/Y-X routing,\nover all intra-cluster pairs of every "
                "split of the 8x8 mesh.");

    const SysConfig cfg = benchConfig();
    const Topology topo(cfg);

    // Split-major, XY-only before bidirectional — the row order below.
    std::vector<RoutingJob> jobs;
    for (unsigned split : {2u, 5u, 8u, 12u, 19u, 32u, 45u, 59u, 62u}) {
        jobs.push_back({split, false});
        jobs.push_back({split, true});
    }

    const std::vector<Audit> results =
        SweepRunner(sweepThreads())
            .map<Audit>(jobs.size(), [&](std::size_t i) {
                return auditPolicy(topo, jobs[i].split,
                                   jobs[i].bidirectional);
            });

    Table table({"secure cores", "XY-only violations", "XY-only hops",
                 "bidir violations", "bidir hops"});
    std::uint64_t xy_total = 0;
    for (std::size_t i = 0; i < jobs.size(); i += 2) {
        const Audit &xy = results[i];
        const Audit &bi = results[i + 1];
        xy_total += xy.violations;
        table.addRow({strprintf("%u", jobs[i].split),
                      strprintf("%llu", (unsigned long long)xy.violations),
                      Table::num(xy.avgHops),
                      strprintf("%llu", (unsigned long long)bi.violations),
                      Table::num(bi.avgHops)});
    }
    table.print();
    std::printf("\nX-Y-only routing leaks traffic across the boundary for "
                "every partial-row split\n(%llu violating pairs total); "
                "the bidirectional policy is violation-free at\nidentical "
                "average hop counts.\n",
                (unsigned long long)xy_total);

    if (json_path) {
        writeTextFile(json_path, routingToJson(jobs, results) + "\n");
        std::printf("wrote JSON report: %s\n", json_path);
    }
    return 0;
}
