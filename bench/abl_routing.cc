/**
 * @file
 * Ablation A1 (design choice, Section III-B2): why the mesh needs
 * *bidirectional* X-Y / Y-X routing for strong isolation.
 *
 * For every cluster split, checks all intra-cluster (src, dst) pairs of
 * both clusters: with X-Y-only routing, packets of a partially-owned
 * row drift through the other cluster's routers (isolation violations);
 * with the bidirectional policy the property tests rely on, containment
 * is total. Also reports the average route length, showing the security
 * fix costs no extra hops.
 */

#include <vector>

#include "harness/experiment.hh"
#include "harness/report.hh"
#include "noc/routing.hh"

using namespace ih;

namespace
{

struct Audit
{
    std::uint64_t pairs = 0;
    std::uint64_t violations = 0;
    double avgHops = 0.0;
};

Audit
auditPolicy(const Topology &topo, unsigned split, bool bidirectional)
{
    const Router router(topo);
    const unsigned tiles = topo.numTiles();
    const ClusterRange secure{0, split};
    const ClusterRange insecure{split, tiles - split};

    Audit a;
    double hops = 0.0;
    for (const ClusterRange &cl : {secure, insecure}) {
        for (CoreId s = cl.first; s < cl.first + cl.count; ++s) {
            for (CoreId d = cl.first; d < cl.first + cl.count; ++d) {
                const RouteOrder order = bidirectional
                                             ? router.selectOrder(s, cl)
                                             : RouteOrder::XY;
                const auto path = router.path(s, d, order);
                ++a.pairs;
                hops += static_cast<double>(path.size()) - 1.0;
                if (!router.pathContained(path, cl))
                    ++a.violations;
            }
        }
    }
    a.avgHops = hops / static_cast<double>(a.pairs);
    return a;
}

} // namespace

int
main()
{
    printBanner("Ablation A1 — deterministic routing policy",
                "Cluster containment of X-Y-only vs bidirectional "
                "X-Y/Y-X routing,\nover all intra-cluster pairs of every "
                "split of the 8x8 mesh.");

    const SysConfig cfg = benchConfig();
    const Topology topo(cfg);

    Table table({"secure cores", "XY-only violations", "XY-only hops",
                 "bidir violations", "bidir hops"});
    std::uint64_t xy_total = 0;
    for (unsigned split : {2u, 5u, 8u, 12u, 19u, 32u, 45u, 59u, 62u}) {
        const Audit xy = auditPolicy(topo, split, false);
        const Audit bi = auditPolicy(topo, split, true);
        xy_total += xy.violations;
        table.addRow({strprintf("%u", split),
                      strprintf("%llu", (unsigned long long)xy.violations),
                      Table::num(xy.avgHops),
                      strprintf("%llu", (unsigned long long)bi.violations),
                      Table::num(bi.avgHops)});
    }
    table.print();
    std::printf("\nX-Y-only routing leaks traffic across the boundary for "
                "every partial-row split\n(%llu violating pairs total); "
                "the bidirectional policy is violation-free at\nidentical "
                "average hop counts.\n",
                (unsigned long long)xy_total);
    return 0;
}
