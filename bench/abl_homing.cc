/**
 * @file
 * Ablation A2 (design choice, Section II/IV): hash-for-homing vs local
 * homing for the distributed shared L2.
 *
 * Hash-for-homing spreads every process's lines over all 64 slices —
 * great load balance, but the secure process's footprint lands in
 * slices an attacker can probe, and packets roam the whole mesh. Local
 * homing (what MI6/IRONHIDE require) confines each process's pages to
 * its own slice partition. This ablation runs the same application both
 * ways and reports the leak surface (L2 slices holding secure-owned
 * lines) and the performance cost/benefit.
 *
 * The (app x policy) grid fans out over the SweepRunner pool
 * (IRONHIDE_THREADS) like the figure benches, and `--json <path>`
 * writes a "BENCH_homing/v1" report. Each cell is a pure function of
 * (app, policy, config), so the report bytes are identical at any
 * worker count.
 */

#include <cstdio>
#include <vector>

#include "core/insecure.hh"
#include "core/mi6.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"

using namespace ih;

namespace
{

struct HomingJob
{
    AppSpec app;
    bool localHoming = false;

    const char *policy() const
    {
        return localHoming ? "local homing" : "hash-for-homing";
    }
};

struct HomingResult
{
    double completionMs = 0.0;
    unsigned slicesWithSecureData = 0;
    double l2Miss = 0.0;
};

HomingResult
runOne(const AppSpec &spec, const SysConfig &cfg, bool local_homing)
{
    System sys(cfg);
    // Use the insecure substrate (no purges) so the homing policy is the
    // only variable; override homing after configuration.
    InsecureBaseline model(sys);
    InteractiveApp app(sys, model, spec);
    Process &sec = app.secureProc();
    Process &ins = app.insecureProc();
    if (local_homing) {
        const unsigned half = sys.numTiles() / 2;
        sec.space().setHomingMode(HomingMode::LOCAL_HOMING);
        sec.space().setAllowedSlices(sys.prefixTiles(half));
        ins.space().setHomingMode(HomingMode::LOCAL_HOMING);
        ins.space().setAllowedSlices(sys.suffixTiles(half));
    }
    const RunResult r = app.run();

    unsigned slices = 0;
    for (CoreId s = 0; s < sys.numTiles(); ++s) {
        if (sys.mem().l2(s).validLinesOf(Domain::SECURE) > 0)
            ++slices;
    }
    return {r.completionMs(), slices, r.l2MissRate};
}

std::string
homingToJson(const std::vector<HomingJob> &jobs,
             const std::vector<HomingResult> &results, unsigned slices)
{
    JsonWriter w;
    w.beginObject();
    w.key("schema").value("BENCH_homing/v1");
    w.key("bench").value("abl_homing");
    w.key("l2_slices").value(slices);
    w.key("results").beginArray();
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const HomingResult &r = results[i];
        w.beginObject();
        w.key("app").value(jobs[i].app.name);
        w.key("policy").value(jobs[i].policy());
        w.key("completion_ms").value(r.completionMs);
        w.key("slices_with_secure_lines")
            .value(std::uint64_t{r.slicesWithSecureData});
        w.key("l2_miss_rate").value(r.l2Miss);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace

int
main(int argc, char **argv)
{
    const char *json_path = jsonReportPath(argc, argv);
    printBanner("Ablation A2 — L2 homing policy",
                "Hash-for-homing spreads secure state across the whole "
                "LLC (probe-able\nby a co-located attacker); local "
                "homing confines it to the partition.");

    const SysConfig cfg = benchConfig();
    const double scale = benchScale() * 0.5;
    const unsigned slices = cfg.meshWidth * cfg.meshHeight;

    // App-major, hash-for-homing before local homing — the row order of
    // the table below.
    std::vector<HomingJob> jobs;
    for (const char *name :
         {"<PR, GRAPH>", "<AES, QUERY>", "<MEMCACHED, OS>"}) {
        const AppSpec spec = findApp(name, scale);
        jobs.push_back({spec, false});
        jobs.push_back({spec, true});
    }

    const std::vector<HomingResult> results =
        SweepRunner(sweepThreads())
            .map<HomingResult>(jobs.size(), [&](std::size_t i) {
                return runOne(jobs[i].app, cfg, jobs[i].localHoming);
            });

    Table table({"application", "policy", "completion(ms)",
                 "slices w/ secure lines", "L2 miss"});
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const HomingResult &r = results[i];
        table.addRow({jobs[i].app.name, jobs[i].policy(),
                      Table::num(r.completionMs, 3),
                      strprintf("%u / %u", r.slicesWithSecureData,
                                slices),
                      Table::pct(r.l2Miss)});
        if (i % 2 == 1)
            table.addSeparator();
    }
    table.print();
    std::printf("\nLocal homing confines secure lines to the secure "
                "partition (a prerequisite\nfor strong isolation); "
                "hash-for-homing spreads them machine-wide.\n");

    if (json_path) {
        writeTextFile(json_path,
                      homingToJson(jobs, results, slices) + "\n");
        std::printf("wrote JSON report: %s\n", json_path);
    }
    return 0;
}
