/**
 * @file
 * Ablation A2 (design choice, Section II/IV): hash-for-homing vs local
 * homing for the distributed shared L2.
 *
 * Hash-for-homing spreads every process's lines over all 64 slices —
 * great load balance, but the secure process's footprint lands in
 * slices an attacker can probe, and packets roam the whole mesh. Local
 * homing (what MI6/IRONHIDE require) confines each process's pages to
 * its own slice partition. This ablation runs the same application both
 * ways and reports the leak surface (L2 slices holding secure-owned
 * lines) and the performance cost/benefit.
 */

#include "core/insecure.hh"
#include "core/mi6.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"

using namespace ih;

namespace
{

struct HomingResult
{
    double completionMs;
    unsigned slicesWithSecureData;
    double l2Miss;
};

HomingResult
runOne(const AppSpec &spec, const SysConfig &cfg, bool local_homing)
{
    System sys(cfg);
    // Use the insecure substrate (no purges) so the homing policy is the
    // only variable; override homing after configuration.
    InsecureBaseline model(sys);
    InteractiveApp app(sys, model, spec);
    Process &sec = app.secureProc();
    Process &ins = app.insecureProc();
    if (local_homing) {
        const unsigned half = sys.numTiles() / 2;
        sec.space().setHomingMode(HomingMode::LOCAL_HOMING);
        sec.space().setAllowedSlices(sys.prefixTiles(half));
        ins.space().setHomingMode(HomingMode::LOCAL_HOMING);
        ins.space().setAllowedSlices(sys.suffixTiles(half));
    }
    const RunResult r = app.run();

    unsigned slices = 0;
    for (CoreId s = 0; s < sys.numTiles(); ++s) {
        if (sys.mem().l2(s).validLinesOf(Domain::SECURE) > 0)
            ++slices;
    }
    return {r.completionMs(), slices, r.l2MissRate};
}

} // namespace

int
main()
{
    printBanner("Ablation A2 — L2 homing policy",
                "Hash-for-homing spreads secure state across the whole "
                "LLC (probe-able\nby a co-located attacker); local "
                "homing confines it to the partition.");

    const SysConfig cfg = benchConfig();
    const double scale = benchScale() * 0.5;

    Table table({"application", "policy", "completion(ms)",
                 "slices w/ secure lines", "L2 miss"});
    for (const char *name :
         {"<PR, GRAPH>", "<AES, QUERY>", "<MEMCACHED, OS>"}) {
        const AppSpec spec = findApp(name, scale);
        const HomingResult hash = runOne(spec, cfg, false);
        const HomingResult local = runOne(spec, cfg, true);
        table.addRow({spec.name, "hash-for-homing",
                      Table::num(hash.completionMs, 3),
                      strprintf("%u / %u", hash.slicesWithSecureData,
                                cfg.meshWidth * cfg.meshHeight),
                      Table::pct(hash.l2Miss)});
        table.addRow({spec.name, "local homing",
                      Table::num(local.completionMs, 3),
                      strprintf("%u / %u", local.slicesWithSecureData,
                                cfg.meshWidth * cfg.meshHeight),
                      Table::pct(local.l2Miss)});
        table.addSeparator();
    }
    table.print();
    std::printf("\nLocal homing confines secure lines to the secure "
                "partition (a prerequisite\nfor strong isolation); "
                "hash-for-homing spreads them machine-wide.\n");
    return 0;
}
