/**
 * @file
 * Attack-scenario suite: per-(channel x architecture) leakage metrics.
 *
 * Runs every AttackScenario (LLC occupancy, TLB prime+probe, NoC link
 * timing, MC contention) against every architecture and reports the
 * distinguisher accuracy, the leaked bits per trial and the estimated
 * attacker bit rate. The binary self-gates the paper's security story:
 * IRONHIDE and MI6 must leak 0 bits on every channel, SGX-like must
 * leak on the LLC and DRAM channels, and the unprotected INSECURE
 * victim — the control cell that proves each distinguisher actually
 * works — must leak on every channel. Any violation is printed with
 * the offending (channel, arch) cell and the exit code is nonzero.
 *
 * `--json <path>` writes a "BENCH_attacks/v1" report. The report holds
 * no host timing, and each cell is a pure function of
 * (channel, arch, config, trials, seed), so the bytes are identical at
 * any IRONHIDE_THREADS / IRONHIDE_DOMAINS setting (a CI leg diffs
 * them). IRONHIDE_ATTACK_TRIALS overrides the per-cell trial count
 * (default 24; must be a multiple of 4).
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"
#include "workloads/attacks.hh"

using namespace ih;

namespace
{

unsigned
attackTrials()
{
    unsigned long v = 0;
    if (parseEnvUnsigned("IRONHIDE_ATTACK_TRIALS",
                         std::getenv("IRONHIDE_ATTACK_TRIALS"), 4096, v)) {
        if (v == 0 || v % 4 != 0)
            fatal("IRONHIDE_ATTACK_TRIALS must be a positive multiple "
                  "of 4 (got %lu)",
                  v);
        return static_cast<unsigned>(v);
    }
    return 24;
}

struct AttackJob
{
    AttackChannel channel;
    ArchKind arch;
};

/** The security story the suite enforces (exit code + CI). */
struct Expectation
{
    bool checked = false;  ///< is this cell part of the gate?
    bool mustLeak = false; ///< required sign of the leakage metric
};

Expectation
expectationFor(const AttackJob &job)
{
    switch (job.arch) {
      case ArchKind::IRONHIDE:
      case ArchKind::MI6:
        // Strong isolation: zero leakage on *every* channel.
        return {true, false};
      case ArchKind::SGX_LIKE:
        // SGX's shared LLC and DRAM path must demonstrably leak (the
        // attacks would be vacuous otherwise). TLB/NoC also leak in
        // practice but are reported, not gated.
        if (job.channel == AttackChannel::LLC_OCCUPANCY ||
            job.channel == AttackChannel::MC_CONTENTION) {
            return {true, true};
        }
        return {};
      case ArchKind::INSECURE:
        // Unprotected-victim control: with no security mechanism at
        // all, every channel must demonstrably leak. A channel whose
        // distinguisher cannot even read the insecure baseline's
        // secret would make the zero-leakage cells above vacuous.
        return {true, true};
    }
    return {};
}

std::string
attacksToJson(const std::vector<AttackJob> &jobs,
              const std::vector<LeakageResult> &results, unsigned trials,
              std::uint64_t seed)
{
    JsonWriter w;
    w.beginObject();
    w.key("schema").value("BENCH_attacks/v1");
    w.key("bench").value("abl_attacks");
    w.key("trials").value(trials);
    w.key("seed").value(seed);
    w.key("results").beginArray();
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const LeakageResult &r = results[i];
        w.beginObject();
        w.key("channel").value(r.channel);
        w.key("arch").value(r.arch);
        w.key("trials").value(r.trials);
        w.key("accuracy").value(r.accuracy);
        w.key("leak_bits_per_trial").value(r.leakBitsPerTrial);
        w.key("bits_per_sec").value(r.bitsPerSec);
        w.key("signal").value(r.signal);
        w.key("mean_trial_cycles").value(r.meanTrialCycles);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace

int
main(int argc, char **argv)
{
    const char *json_path = jsonReportPath(argc, argv);
    printBanner("Attack-scenario suite",
                "Prime+probe leakage per (channel x architecture): "
                "distinguisher accuracy\nover victim-secret bits, leaked "
                "bits/trial and attacker bit rate.");

    const SysConfig cfg = benchConfig();
    AttackRunOptions opts;
    opts.trials = attackTrials();

    std::vector<AttackJob> jobs;
    for (const AttackChannel c : standardAttackChannels()) {
        for (const ArchKind k :
             {ArchKind::INSECURE, ArchKind::SGX_LIKE, ArchKind::MI6,
              ArchKind::IRONHIDE}) {
            jobs.push_back({c, k});
        }
    }

    const std::vector<LeakageResult> results =
        SweepRunner(sweepThreads())
            .map<LeakageResult>(jobs.size(), [&](std::size_t i) {
                return runAttack(jobs[i].channel, jobs[i].arch, cfg, opts);
            });

    Table table({"channel", "arch", "accuracy", "bits/trial", "bits/s",
                 "signal"});
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const LeakageResult &r = results[i];
        table.addRow({r.channel, r.arch, Table::num(r.accuracy, 3),
                      Table::num(r.leakBitsPerTrial, 3),
                      Table::num(r.bitsPerSec, 1),
                      Table::num(r.signal, 2)});
        if (i % 4 == 3)
            table.addSeparator();
    }
    table.print();

    // Gate the security story, naming every violated expectation.
    unsigned violations = 0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const Expectation e = expectationFor(jobs[i]);
        const LeakageResult &r = results[i];
        if (!e.checked || r.leaks() == e.mustLeak)
            continue;
        ++violations;
        std::printf("FAIL: %s expected %s on channel %s but measured "
                    "%.3f bits/trial (accuracy %.3f)\n",
                    r.arch.c_str(),
                    e.mustLeak ? "leakage" : "zero leakage",
                    r.channel.c_str(), r.leakBitsPerTrial, r.accuracy);
    }
    if (violations == 0) {
        std::printf("\nAll leakage expectations hold: IRONHIDE and MI6 "
                    "leak 0 bits on every\nchannel; SGX-like leaks on "
                    "the LLC and DRAM channels; the insecure\ncontrol "
                    "victim leaks on every channel.\n");
    }

    if (json_path) {
        writeTextFile(json_path,
                      attacksToJson(jobs, results, opts.trials, opts.seed) +
                          "\n");
        std::printf("wrote JSON report: %s\n", json_path);
    }
    return violations == 0 ? 0 : 1;
}
