/**
 * @file
 * Regenerates Figure 1(a): geometric-mean completion time of the
 * SGX-like, multicore-MI6 and IRONHIDE architectures across all nine
 * interactive applications, normalized to the insecure baseline.
 *
 * Paper values: SGX ~1.33x, MI6 ~2.25x, IRONHIDE best-of-secure (~20%
 * better than SGX, ~2.1x better than MI6).
 */

#include <map>
#include <vector>

#include "harness/experiment.hh"
#include "harness/report.hh"

using namespace ih;

int
main()
{
    printBanner("Figure 1(a)",
                "Normalized geomean completion time of secure processor "
                "architectures\n(insecure baseline = 1.0). Paper: SGX "
                "~1.33x, MI6 ~2.25x, IRONHIDE lowest.");

    const SysConfig cfg = benchConfig();
    const double scale = benchScale();
    const std::vector<AppSpec> apps = standardApps(scale);
    const std::vector<ArchKind> archs = {
        ArchKind::INSECURE, ArchKind::SGX_LIKE, ArchKind::MI6,
        ArchKind::IRONHIDE};

    std::map<std::string, std::vector<double>> normalized;
    for (const AppSpec &app : apps) {
        double baseline = 0.0;
        for (ArchKind kind : archs) {
            const ExperimentResult r = runExperiment(app, kind, cfg);
            if (kind == ArchKind::INSECURE)
                baseline = static_cast<double>(r.run.completion);
            normalized[r.arch].push_back(
                static_cast<double>(r.run.completion) / baseline);
        }
    }

    Table table({"architecture", "norm. geomean completion", "paper"});
    table.addRow({"insecure", Table::num(geomean(normalized["insecure"])),
                  "1.00"});
    table.addRow({"sgx", Table::num(geomean(normalized["sgx"])), "~1.33"});
    table.addRow({"mi6", Table::num(geomean(normalized["mi6"])), "~2.25"});
    table.addRow({"ironhide", Table::num(geomean(normalized["ironhide"])),
                  "lowest of the secure designs"});
    table.print();
    return 0;
}
