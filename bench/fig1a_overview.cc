/**
 * @file
 * Regenerates Figure 1(a): geometric-mean completion time of the
 * SGX-like, multicore-MI6 and IRONHIDE architectures across all nine
 * interactive applications, normalized to the insecure baseline.
 *
 * Paper values: SGX ~1.33x, MI6 ~2.25x, IRONHIDE best-of-secure (~20%
 * better than SGX, ~2.1x better than MI6).
 *
 * The (app x arch) grid fans out over the SweepRunner pool
 * (IRONHIDE_THREADS) like every figure bench, with the standard
 * fault-tolerance flags (IRONHIDE_SHARD, --isolate, --journal,
 * --merge) and `--json <path>` writing the "sweep/v2" report.
 */

#include <vector>

#include "harness/experiment.hh"
#include "harness/report.hh"
#include "harness/sweep.hh"

using namespace ih;

int
main(int argc, char **argv)
{
    const SysConfig cfg = benchConfig();
    const std::vector<AppSpec> apps = standardApps(benchScale());

    // App-major, then arch — each app's four runs sit at
    // results[app*4 + {0,1,2,3}] = {insecure, sgx, mi6, ironhide}.
    const std::vector<SweepJob> jobs =
        SweepGrid()
            .config(cfg)
            .apps(apps)
            .archs({ArchKind::INSECURE, ArchKind::SGX_LIKE, ArchKind::MI6,
                    ArchKind::IRONHIDE})
            .jobs();

    const int merged =
        maybeMergeShardReports(argc, argv, "fig1a_overview", jobs);
    if (merged >= 0)
        return merged;

    printBanner("Figure 1(a)",
                "Normalized geomean completion time of secure processor "
                "architectures\n(insecure baseline = 1.0). Paper: SGX "
                "~1.33x, MI6 ~2.25x, IRONHIDE lowest.");

    const SweepOutcome out =
        runBenchSweep(argc, argv, "fig1a_overview", jobs);
    if (!out.complete() || out.sharded()) {
        // The per-app normalization below needs every cell; a partial
        // run already reported its cells above.
        maybeWriteJsonReport(argc, argv, "fig1a_overview", jobs, out);
        return out.exitCode();
    }
    const std::vector<ExperimentResult> &results = out.results;

    constexpr std::size_t kArchs = 4;
    std::vector<std::vector<double>> normalized(kArchs);
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const double baseline = static_cast<double>(
            results[i * kArchs + 0].run.completion);
        for (std::size_t k = 0; k < kArchs; ++k)
            normalized[k].push_back(
                static_cast<double>(results[i * kArchs + k].run.completion) /
                baseline);
    }

    Table table({"architecture", "norm. geomean completion", "paper"});
    table.addRow({"insecure", Table::num(geomean(normalized[0])), "1.00"});
    table.addRow({"sgx", Table::num(geomean(normalized[1])), "~1.33"});
    table.addRow({"mi6", Table::num(geomean(normalized[2])), "~2.25"});
    table.addRow({"ironhide", Table::num(geomean(normalized[3])),
                  "lowest of the secure designs"});
    table.print();

    maybeWriteJsonReport(argc, argv, "fig1a_overview", jobs, out);
    return out.exitCode();
}
