/**
 * @file
 * Open-loop serving sweep: session-latency percentiles and
 * goodput-vs-offered-load curves under continuous enclave churn.
 *
 * The paper evaluates IRONHIDE on one application at a time; this
 * bench asks the deployment question instead: a long-lived machine
 * receives a Poisson stream of sessions over the paper's applications,
 * every arrival spawns an enclave invocation (secure allocation,
 * reconfiguration decision, teardown scrub on the next distrusting
 * arrival), and each architecture's ladder escalates the offered load
 * until saturation (harness/serve). The headline contrast: SGX pays a
 * constant per-interaction tax, MI6's purge-bracketed entry/exit
 * crushes its saturation point, and IRONHIDE serves near the insecure
 * machine's knee while still purging between distrusting apps.
 *
 * One job = one architecture's whole ladder, run through the generic
 * fault-tolerance layer: IRONHIDE_SHARD skips ladders other shards
 * own, --journal resumes completed ladders across crashes, --isolate
 * forks each ladder into a supervised child (IRONHIDE_JOB_TIMEOUT_MS /
 * IRONHIDE_JOB_RETRIES apply). `--json <path>` writes the
 * "BENCH_serve/v1" report — byte-identical at any IRONHIDE_THREADS /
 * IRONHIDE_DOMAINS setting (CI diffs 1 vs 4).
 *
 * Knobs: IRONHIDE_SERVE_SESSIONS (sessions per ladder rung, default
 * 48), IRONHIDE_SERVE_APPS (serve only the first n paper apps),
 * IRONHIDE_SERVE_SEED (arrival-process seed),
 * IRONHIDE_SERVE_LAMBDA0 (first rung's offered load in sessions/s;
 * unset = calibrate off the insecure machine),
 * IRONHIDE_SERVE_CALIB (pinned = calibrate the ladder origin on the
 * INSECURE machine so every architecture runs the same absolute
 * loads, the default; per-arch = calibrate on the architecture under
 * test, starting each ladder the same relative distance below its own
 * knee), IRONHIDE_MAX_LOAD_STEPS (rung bound, default 6).
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/report.hh"
#include "harness/serve.hh"
#include "harness/sweep.hh"
#include "sim/log.hh"

using namespace ih;

namespace
{

const ArchKind kArchs[] = {ArchKind::INSECURE, ArchKind::SGX_LIKE,
                           ArchKind::MI6, ArchKind::IRONHIDE};
constexpr std::size_t kNumArchs = 4;

LoadLadderOptions
ladderOptions(const std::vector<AppSpec> &apps)
{
    LoadLadderOptions opts;
    opts.maxSteps = maxLoadSteps();
    opts.lambda0 = envPositiveDouble("IRONHIDE_SERVE_LAMBDA0", 0.0);
    opts.serve.sessions = 48;
    unsigned long v = 0;
    if (parseEnvUnsigned("IRONHIDE_SERVE_SESSIONS",
                         std::getenv("IRONHIDE_SERVE_SESSIONS"),
                         1000000ul, v) &&
        v > 0)
        opts.serve.sessions = v;
    if (parseEnvUnsigned("IRONHIDE_SERVE_SEED",
                         std::getenv("IRONHIDE_SERVE_SEED"),
                         0xFFFFFFFFul, v))
        opts.serve.seed = v;
    if (const char *calib = std::getenv("IRONHIDE_SERVE_CALIB")) {
        const std::string s = calib;
        if (s == "per-arch")
            opts.perArchCalib = true;
        else if (s != "pinned")
            fatal("unknown IRONHIDE_SERVE_CALIB '%s' (pinned|per-arch)",
                  calib);
    }
    (void)apps;
    return opts;
}

std::string
serveToJson(const std::vector<std::string> &payloads,
            const PayloadOutcome &out)
{
    JsonWriter w;
    w.beginObject();
    w.key("schema").value("BENCH_serve/v1");
    w.key("sweep").value("serve_openloop");
    w.key("jobs").value(std::uint64_t{kNumArchs});
    if (out.sharded()) {
        w.key("shard").value(out.shard.str());
        w.key("shard_jobs").value(std::uint64_t{out.shardJobs()});
    }
    w.key("complete").value(out.complete());
    const std::vector<std::size_t> failed = out.failedCells();
    if (!failed.empty()) {
        w.key("failed_cells").beginArray();
        for (const std::size_t i : failed)
            w.value(std::uint64_t{i});
        w.endArray();
    }

    w.key("results").beginArray();
    for (std::size_t i = 0; i < kNumArchs; ++i) {
        const CellOutcome &c = out.cells[i];
        if (c.status == CellStatus::SKIPPED)
            continue;
        w.beginObject();
        w.key("job").value(std::uint64_t{i});
        w.key("arch").value(archName(kArchs[i]));
        w.key("status").value(cellStatusName(c.status, c.attempts));
        if (c.attempts > 1)
            w.key("attempts").value(c.attempts);
        if (!c.ok()) {
            w.key("error").value(c.error);
            w.endObject();
            continue;
        }
        LoadLadderResult ladder;
        const bool ok = deserializeLadder(payloads[i], ladder);
        IH_ASSERT(ok, "validated ladder payload failed to decode");
        w.key("stop_reason").value(ladder.stopReason);
        w.key("steps").beginArray();
        for (const ServeCellResult &s : ladder.steps) {
            w.beginObject();
            w.key("offered_per_sec").value(s.offeredPerSec);
            w.key("sessions").value(s.sessions);
            w.key("makespan_cycles").value(s.makespan);
            w.key("p50_cycles").value(s.p50);
            w.key("p99_cycles").value(s.p99);
            w.key("p999_cycles").value(s.p999);
            w.key("max_latency_cycles").value(s.maxLatency);
            w.key("mean_latency_cycles").value(s.meanLatency);
            w.key("goodput_per_sec").value(s.goodputPerSec);
            w.key("max_queue_depth").value(s.maxQueueDepth);
            w.key("reconfig_events").value(s.reconfigEvents);
            w.key("app_switch_purges").value(s.appSwitchPurges);
            w.key("transitions").value(s.transitions);
            w.key("purge_cycles").value(s.purgeCycles);
            w.key("transition_cycles").value(s.transitionCycles);
            w.key("reconfig_cycles").value(s.reconfigCycles);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace

int
main(int argc, char **argv)
{
    const SysConfig cfg = benchConfig();
    std::vector<AppSpec> apps = standardApps(benchScale());
    unsigned long nApps = 0;
    if (parseEnvUnsigned("IRONHIDE_SERVE_APPS",
                         std::getenv("IRONHIDE_SERVE_APPS"), apps.size(),
                         nApps) &&
        nApps > 0)
        apps.resize(nApps);
    const LoadLadderOptions base = ladderOptions(apps);

    printBanner("Open-loop serving: latency under enclave churn",
                "Poisson session arrivals on a long-lived machine; "
                "offered load escalates until saturation per "
                "architecture.");
    std::printf("sessions/rung %" PRIu64 ", rung bound %u, apps %zu\n\n",
                base.serve.sessions, base.maxSteps, apps.size());

    jsonReportPath(argc, argv); // fail-fast probe before the runs
    const SweepRunOptions opts = sweepRunFromArgs(argc, argv);
    const FaultPlan faults = FaultPlan::fromEnv();

    // One job per architecture. The IRONHIDE ladder binds each app's
    // preferred split once (the paper's heuristic) and rebinds the
    // cluster per arriving session; recomputing inside the job keeps
    // it self-contained under --isolate and resume.
    const auto runJob = [&](std::size_t i) {
        LoadLadderOptions lopts = base;
        if (kArchs[i] == ArchKind::IRONHIDE) {
            for (const AppSpec &app : apps)
                lopts.serve.splits.push_back(
                    decideSplit(app, cfg, SplitPolicy::HEURISTIC, 4,
                                effectiveDomains(cfg))
                        .secureCores);
        }
        return serializeLadder(
            runLoadLadder(kArchs[i], cfg, apps, lopts));
    };
    const auto validate = [](const std::string &payload) {
        LoadLadderResult r;
        return deserializeLadder(payload, r);
    };
    const auto perturb = [](const std::string &payload) {
        LoadLadderResult r;
        const bool ok = deserializeLadder(payload, r);
        IH_ASSERT(ok, "NONDET perturbation of an undecodable payload");
        if (!r.steps.empty())
            r.steps[0].transitions += 1;
        return serializeLadder(r);
    };

    PayloadOutcome out;
    try {
        out = runFaultTolerantPayloadSweep("serve_openloop", kNumArchs,
                                           runJob, validate, perturb,
                                           opts, faults);
    } catch (const JournalError &e) {
        fatal("%s", e.what());
    }

    if (out.sharded())
        std::printf("shard %s: %zu of %zu jobs\n", out.shard.str().c_str(),
                    out.shardJobs(), kNumArchs);
    if (!opts.journalPath.empty())
        std::printf("resume: %zu of %zu jobs already complete\n",
                    out.resumed, out.shardJobs());
    for (const std::size_t i : out.failedCells()) {
        const CellOutcome &c = out.cells[i];
        std::printf("%s job %zu (%s): %s [%u attempt%s]\n",
                    c.status == CellStatus::TIMEOUT ? "TIMEOUT"
                                                    : "FAILED",
                    i, archName(kArchs[i]), c.error.c_str(), c.attempts,
                    c.attempts == 1 ? "" : "s");
    }
    if (!out.complete())
        std::printf("sweep degraded: %zu of %zu cells failed; the table "
                    "covers the survivors only\n",
                    out.failedCells().size(), out.shardJobs());

    Table table({"arch", "offered/s", "goodput/s", "p50(us)", "p99(us)",
                 "p999(us)", "maxq", "reconfigs", "purges", "stop"});
    for (std::size_t i = 0; i < kNumArchs; ++i) {
        if (!out.cells[i].ok())
            continue;
        LoadLadderResult ladder;
        const bool ok = deserializeLadder(out.payloads[i], ladder);
        IH_ASSERT(ok, "validated ladder payload failed to decode");
        for (std::size_t s = 0; s < ladder.steps.size(); ++s) {
            const ServeCellResult &c = ladder.steps[s];
            const bool last = s + 1 == ladder.steps.size();
            table.addRow(
                {s == 0 ? ladder.arch : "", Table::num(c.offeredPerSec, 0),
                 Table::num(c.goodputPerSec, 0),
                 Table::num(cyclesToUs(c.p50), 1),
                 Table::num(cyclesToUs(c.p99), 1),
                 Table::num(cyclesToUs(c.p999), 1),
                 strprintf("%" PRIu64, c.maxQueueDepth),
                 strprintf("%" PRIu64, c.reconfigEvents),
                 strprintf("%" PRIu64, c.appSwitchPurges),
                 last ? ladder.stopReason : ""});
        }
        table.addSeparator();
    }
    table.print();

    if (const char *path = jsonReportPath(argc, argv)) {
        writeTextFile(path, serveToJson(out.payloads, out) + "\n");
        std::printf("wrote JSON report: %s\n", path);
    }
    return out.exitCode();
}
